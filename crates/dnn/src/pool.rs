//! Pooling layers: 2×2 max pooling and global average pooling.

use crate::act::Act;
use crate::layer::Layer;

/// Max pooling with a square window and stride equal to the window.
pub struct MaxPool2d {
    k: usize,
    argmax: Vec<u32>,
    in_dims: (usize, usize, usize, usize),
}

impl MaxPool2d {
    /// New pooling layer with window and stride `k`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1);
        Self {
            k,
            argmax: Vec::new(),
            in_dims: (0, 0, 0, 0),
        }
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, x: Act, train: bool) -> Act {
        let oh = x.h / self.k;
        let ow = x.w / self.k;
        assert!(oh > 0 && ow > 0, "pool window larger than input");
        let mut out = Vec::with_capacity(x.n * x.c * oh * ow);
        let mut argmax = Vec::with_capacity(out.capacity());
        for i in 0..x.n {
            let xs = x.sample(i);
            for c in 0..x.c {
                let plane = &xs[c * x.h * x.w..(c + 1) * x.h * x.w];
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0usize;
                        for ky in 0..self.k {
                            for kx in 0..self.k {
                                let idx = (oy * self.k + ky) * x.w + ox * self.k + kx;
                                if plane[idx] > best {
                                    best = plane[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        out.push(best);
                        argmax.push((i * x.c * x.h * x.w + c * x.h * x.w + best_idx) as u32);
                    }
                }
            }
        }
        if train {
            self.argmax = argmax;
            self.in_dims = (x.n, x.c, x.h, x.w);
        }
        Act::new(out, x.n, x.c, oh, ow)
    }

    fn backward(&mut self, grad: Act) -> Act {
        let (n, c, h, w) = self.in_dims;
        assert_eq!(
            grad.data.len(),
            self.argmax.len(),
            "pool backward without forward"
        );
        let mut gx = Act::zeros(n, c, h, w);
        for (&idx, &g) in self.argmax.iter().zip(&grad.data) {
            gx.data[idx as usize] += g;
        }
        gx
    }
}

/// Global average pooling to `[N, C, 1, 1]`.
#[derive(Default)]
pub struct GlobalAvgPool {
    in_dims: (usize, usize, usize, usize),
}

impl GlobalAvgPool {
    /// New global average pool.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, x: Act, train: bool) -> Act {
        if train {
            self.in_dims = (x.n, x.c, x.h, x.w);
        }
        let plane = x.h * x.w;
        let mut out = Vec::with_capacity(x.n * x.c);
        for i in 0..x.n {
            let xs = x.sample(i);
            for c in 0..x.c {
                let s: f32 = xs[c * plane..(c + 1) * plane].iter().sum();
                out.push(s / plane as f32);
            }
        }
        Act::new(out, x.n, x.c, 1, 1)
    }

    fn backward(&mut self, grad: Act) -> Act {
        let (n, c, h, w) = self.in_dims;
        let plane = h * w;
        let mut gx = Act::zeros(n, c, h, w);
        for i in 0..n {
            for ch in 0..c {
                let g = grad.data[i * c + ch] / plane as f32;
                let off = i * c * plane + ch * plane;
                for v in &mut gx.data[off..off + plane] {
                    *v = g;
                }
            }
        }
        gx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_picks_maxima() {
        let mut p = MaxPool2d::new(2);
        let x = Act::new(
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                9.0, 1.0, 2.0, 3.0, //
                1.0, 1.0, 4.0, 1.0,
            ],
            1,
            1,
            4,
            4,
        );
        let y = p.forward(x, true);
        assert_eq!(y.data, [4.0, 8.0, 9.0, 4.0]);
        let g = p.backward(Act::new(vec![1.0, 2.0, 3.0, 4.0], 1, 1, 2, 2));
        assert_eq!(g.data[5], 1.0); // position of 4.0
        assert_eq!(g.data[7], 2.0); // position of 8.0
        assert_eq!(g.data[8], 3.0); // position of 9.0
        assert_eq!(g.data[14], 4.0); // position of second 4.0
        assert_eq!(g.data.iter().sum::<f32>(), 10.0);
    }

    #[test]
    fn maxpool_odd_sizes_truncate() {
        let mut p = MaxPool2d::new(2);
        let y = p.forward(Act::zeros(1, 1, 5, 5), false);
        assert_eq!((y.h, y.w), (2, 2));
    }

    #[test]
    fn global_avg_pool_averages() {
        let mut p = GlobalAvgPool::new();
        let x = Act::new(vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0], 1, 2, 2, 2);
        let y = p.forward(x, true);
        assert_eq!(y.data, [2.5, 25.0]);
        let g = p.backward(Act::new(vec![4.0, 8.0], 1, 2, 1, 1));
        assert_eq!(g.data, [1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0]);
    }
}
