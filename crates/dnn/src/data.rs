//! Seeded synthetic image-classification datasets standing in for CIFAR-10,
//! Fashion-MNIST, and Caltech101 (Table IV).
//!
//! Each class is defined by a smooth random prototype image; samples are the
//! prototype under a random shift, additive Gaussian noise, and a brightness
//! jitter. The tasks are learnable but not trivial, which is all the
//! accuracy-vs-error-bound experiments need: compression error perturbs a
//! *trained* model, and what matters is how accuracy degrades with ε.
//!
//! Deviation from the paper: Caltech101 images are synthesized at 32×32
//! rather than 224×224 so that the 101-class task trains within a CPU
//! budget. Class count and relative difficulty are preserved (documented in
//! DESIGN.md §5).

use fedsz_tensor::SplitMix64;

use crate::act::Act;

/// An in-memory labelled image set.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// `n * c * h * w` pixel values.
    pub images: Vec<f32>,
    /// One label per image.
    pub labels: Vec<usize>,
    /// Number of images.
    pub n: usize,
    /// Channels.
    pub c: usize,
    /// Height.
    pub h: usize,
    /// Width.
    pub w: usize,
    /// Number of classes.
    pub num_classes: usize,
}

impl Dataset {
    /// Values per image.
    pub fn image_len(&self) -> usize {
        self.c * self.h * self.w
    }

    /// Gather a batch of images by index.
    pub fn batch(&self, indices: &[usize]) -> (Act, Vec<usize>) {
        let len = self.image_len();
        let mut data = Vec::with_capacity(indices.len() * len);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            data.extend_from_slice(&self.images[i * len..(i + 1) * len]);
            labels.push(self.labels[i]);
        }
        (
            Act::new(data, indices.len(), self.c, self.h, self.w),
            labels,
        )
    }

    /// Extract a subset by index (used for client sharding).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let len = self.image_len();
        let mut images = Vec::with_capacity(indices.len() * len);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            images.extend_from_slice(&self.images[i * len..(i + 1) * len]);
            labels.push(self.labels[i]);
        }
        Dataset {
            images,
            labels,
            n: indices.len(),
            c: self.c,
            h: self.h,
            w: self.w,
            num_classes: self.num_classes,
        }
    }
}

/// The three benchmark tasks of Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// 32×32×3, 10 classes.
    Cifar10Like,
    /// 28×28×1, 10 classes.
    FashionMnistLike,
    /// 32×32×3 (paper: 224×224), 101 classes.
    Caltech101Like,
}

impl DatasetKind {
    /// All datasets in Table IV row order.
    pub fn all() -> [DatasetKind; 3] {
        [
            DatasetKind::Cifar10Like,
            DatasetKind::FashionMnistLike,
            DatasetKind::Caltech101Like,
        ]
    }

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::Cifar10Like => "CIFAR-10",
            DatasetKind::FashionMnistLike => "Fashion-MNIST",
            DatasetKind::Caltech101Like => "Caltech101",
        }
    }

    /// `(channels, height, width, classes)` as generated here.
    pub fn dims(self) -> (usize, usize, usize, usize) {
        match self {
            DatasetKind::Cifar10Like => (3, 32, 32, 10),
            DatasetKind::FashionMnistLike => (1, 28, 28, 10),
            DatasetKind::Caltech101Like => (3, 32, 32, 101),
        }
    }

    /// Table IV's reference characteristics: `(samples, input_side, classes)`.
    pub fn paper_characteristics(self) -> (usize, usize, usize) {
        match self {
            DatasetKind::Cifar10Like => (60_000, 32, 10),
            DatasetKind::FashionMnistLike => (70_000, 28, 10),
            DatasetKind::Caltech101Like => (9_000, 224, 101),
        }
    }

    /// Generate a train/test pair.
    pub fn generate(self, n_train: usize, n_test: usize, seed: u64) -> (Dataset, Dataset) {
        let (c, h, w, classes) = self.dims();
        let mut rng = SplitMix64::new(seed ^ 0x0DA7_A5E7);
        let prototypes = make_prototypes(&mut rng, classes, c, h, w);
        let train = sample_set(&mut rng, &prototypes, n_train, c, h, w, classes);
        let test = sample_set(&mut rng, &prototypes, n_test, c, h, w, classes);
        (train, test)
    }
}

/// Smooth per-class prototype images from superposed low-frequency modes.
fn make_prototypes(
    rng: &mut SplitMix64,
    classes: usize,
    c: usize,
    h: usize,
    w: usize,
) -> Vec<Vec<f32>> {
    (0..classes)
        .map(|_| {
            let mut img = vec![0.0f32; c * h * w];
            for ch in 0..c {
                const MODES: usize = 5;
                let modes: Vec<(f64, f64, f64, f64)> = (0..MODES)
                    .map(|_| {
                        (
                            rng.uniform(0.5, 3.5) as f64,
                            rng.uniform(0.5, 3.5) as f64,
                            rng.uniform(0.3, 1.0) as f64,
                            rng.uniform(0.0, std::f32::consts::TAU) as f64,
                        )
                    })
                    .collect();
                for y in 0..h {
                    for x in 0..w {
                        let (xf, yf) = (x as f64 / w as f64, y as f64 / h as f64);
                        let mut v = 0.0;
                        for &(fx, fy, amp, ph) in &modes {
                            v += amp * (std::f64::consts::TAU * (fx * xf + fy * yf) + ph).sin();
                        }
                        img[ch * h * w + y * w + x] = v as f32;
                    }
                }
            }
            img
        })
        .collect()
}

fn sample_set(
    rng: &mut SplitMix64,
    prototypes: &[Vec<f32>],
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    classes: usize,
) -> Dataset {
    const NOISE_STD: f64 = 0.45;
    const MAX_SHIFT: i64 = 3;
    let mut images = Vec::with_capacity(n * c * h * w);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let label = i % classes; // balanced classes
        let proto = &prototypes[label];
        let dx = rng.below((2 * MAX_SHIFT + 1) as usize) as i64 - MAX_SHIFT;
        let dy = rng.below((2 * MAX_SHIFT + 1) as usize) as i64 - MAX_SHIFT;
        let brightness = rng.normal_with(0.0, 0.2) as f32;
        for ch in 0..c {
            for y in 0..h {
                for x in 0..w {
                    // Toroidal shift keeps statistics uniform.
                    let sy = (y as i64 + dy).rem_euclid(h as i64) as usize;
                    let sx = (x as i64 + dx).rem_euclid(w as i64) as usize;
                    let v = proto[ch * h * w + sy * w + sx]
                        + rng.normal_with(0.0, NOISE_STD) as f32
                        + brightness;
                    images.push(v);
                }
            }
        }
        labels.push(label);
    }
    Dataset {
        images,
        labels,
        n,
        c,
        h,
        w,
        num_classes: classes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_match_table_iv() {
        assert_eq!(DatasetKind::Cifar10Like.dims(), (3, 32, 32, 10));
        assert_eq!(DatasetKind::FashionMnistLike.dims(), (1, 28, 28, 10));
        assert_eq!(DatasetKind::Caltech101Like.dims(), (3, 32, 32, 101));
    }

    #[test]
    fn generation_is_deterministic_and_balanced() {
        let (a, _) = DatasetKind::Cifar10Like.generate(100, 20, 5);
        let (b, _) = DatasetKind::Cifar10Like.generate(100, 20, 5);
        assert_eq!(a.images, b.images);
        // Balanced labels.
        for cls in 0..10 {
            assert_eq!(a.labels.iter().filter(|&&l| l == cls).count(), 10);
        }
    }

    #[test]
    fn train_test_are_distinct_samples() {
        let (train, test) = DatasetKind::FashionMnistLike.generate(50, 50, 9);
        assert_ne!(train.images, test.images);
        assert_eq!(train.image_len(), 28 * 28);
    }

    #[test]
    fn batch_gathers_requested_indices() {
        let (ds, _) = DatasetKind::Cifar10Like.generate(30, 5, 3);
        let (act, labels) = ds.batch(&[3, 7]);
        assert_eq!((act.n, act.c, act.h, act.w), (2, 3, 32, 32));
        assert_eq!(labels, [ds.labels[3], ds.labels[7]]);
        assert_eq!(
            act.sample(1),
            &ds.images[7 * ds.image_len()..8 * ds.image_len()]
        );
    }

    #[test]
    fn subset_extracts_consistently() {
        let (ds, _) = DatasetKind::Caltech101Like.generate(202, 5, 3);
        let sub = ds.subset(&[0, 101]);
        assert_eq!(sub.n, 2);
        assert_eq!(sub.labels, [0, 0]); // 0 % 101 and 101 % 101
        assert_eq!(sub.num_classes, 101);
    }

    #[test]
    fn classes_are_separable_by_prototype_distance() {
        // Nearest-prototype classification on clean prototypes should beat
        // chance by a wide margin — sanity that the task is learnable.
        let (train, test) = DatasetKind::Cifar10Like.generate(200, 100, 11);
        // Estimate class means from train.
        let len = train.image_len();
        let mut means = vec![vec![0.0f64; len]; 10];
        let mut counts = [0usize; 10];
        for i in 0..train.n {
            let l = train.labels[i];
            counts[l] += 1;
            for (m, &v) in means[l]
                .iter_mut()
                .zip(&train.images[i * len..(i + 1) * len])
            {
                *m += v as f64;
            }
        }
        for (m, &cnt) in means.iter_mut().zip(&counts) {
            for v in m.iter_mut() {
                *v /= cnt.max(1) as f64;
            }
        }
        let mut correct = 0usize;
        for i in 0..test.n {
            let img = &test.images[i * len..(i + 1) * len];
            let best = (0..10)
                .min_by(|&a, &b| {
                    let da: f64 = means[a]
                        .iter()
                        .zip(img)
                        .map(|(m, &v)| (m - v as f64).powi(2))
                        .sum();
                    let db: f64 = means[b]
                        .iter()
                        .zip(img)
                        .map(|(m, &v)| (m - v as f64).powi(2))
                        .sum();
                    da.partial_cmp(&db).unwrap()
                })
                .unwrap();
            if best == test.labels[i] {
                correct += 1;
            }
        }
        let acc = correct as f64 / test.n as f64;
        assert!(acc > 0.5, "nearest-prototype accuracy only {acc}");
    }
}
