//! Entropy-coding primitives shared by the lossless codecs and the
//! error-bounded lossy compressors.
//!
//! Everything here is implemented from scratch:
//!
//! * [`bitio`] — MSB-first bit-level writer/reader.
//! * [`huffman`] — canonical Huffman coding over arbitrary `u32` alphabets,
//!   with a compact code-length header.
//! * [`rangecoder`] — adaptive binary range coder (LZMA-style), used by the
//!   `xz`-analogue codec.
//! * [`crc32`] — IEEE CRC-32, used by the `gzip`-analogue framing.
//! * [`varint`] — LEB128 variable-length integers for frame headers.
//! * [`reader`] — checked byte-cursor reads for hostile decode paths.

pub mod bitio;
pub mod crc32;
pub mod huffman;
pub mod rangecoder;
pub mod reader;
pub mod varint;

pub use bitio::{BitReader, BitWriter};
pub use huffman::{HuffmanDecoder, HuffmanEncoder};
pub use rangecoder::{BitModel, RangeDecoder, RangeEncoder};

/// Errors produced while decoding entropy-coded streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the decoder finished.
    UnexpectedEof,
    /// A header or payload failed validation.
    Corrupt(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of compressed stream"),
            CodecError::Corrupt(what) => write!(f, "corrupt stream: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}
