//! Checked byte-stream reading for decode paths.
//!
//! Every decompressor in the workspace consumes attacker-controllable
//! bytes, so none of them may index, slice, or size an allocation from a
//! header field without bounds checking. These helpers centralize the
//! checked patterns: cursor-style reads that advance `pos` only on
//! success, and fail with [`CodecError::UnexpectedEof`] instead of
//! panicking when the input is truncated or a length overflows.

use crate::CodecError;

/// Take the next `n` bytes at `*pos`, advancing the cursor. Fails (without
/// moving the cursor) if `pos + n` overflows or runs past the input.
#[inline]
pub fn take<'a>(data: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8], CodecError> {
    let end = pos.checked_add(n).ok_or(CodecError::UnexpectedEof)?;
    let s = data.get(*pos..end).ok_or(CodecError::UnexpectedEof)?;
    *pos = end;
    Ok(s)
}

/// Take exactly `N` bytes as a fixed array.
#[inline]
pub fn take_array<const N: usize>(data: &[u8], pos: &mut usize) -> Result<[u8; N], CodecError> {
    let s = take(data, pos, N)?;
    let mut a = [0u8; N];
    a.copy_from_slice(s);
    Ok(a)
}

/// Read one byte.
#[inline]
pub fn read_u8(data: &[u8], pos: &mut usize) -> Result<u8, CodecError> {
    let b = *data.get(*pos).ok_or(CodecError::UnexpectedEof)?;
    *pos += 1;
    Ok(b)
}

/// Read a little-endian `u32`.
#[inline]
pub fn read_u32_le(data: &[u8], pos: &mut usize) -> Result<u32, CodecError> {
    Ok(u32::from_le_bytes(take_array::<4>(data, pos)?))
}

/// Read a little-endian `u64`.
#[inline]
pub fn read_u64_le(data: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    Ok(u64::from_le_bytes(take_array::<8>(data, pos)?))
}

/// Read a little-endian `f32`.
#[inline]
pub fn read_f32_le(data: &[u8], pos: &mut usize) -> Result<f32, CodecError> {
    Ok(f32::from_le_bytes(take_array::<4>(data, pos)?))
}

/// Read a little-endian `f64`.
#[inline]
pub fn read_f64_le(data: &[u8], pos: &mut usize) -> Result<f64, CodecError> {
    Ok(f64::from_le_bytes(take_array::<8>(data, pos)?))
}

/// An element count claimed by a header, validated before allocation:
/// `count` elements of `elem_bytes` each must still be representable and
/// must not exceed `available` input bytes. Returns the byte span. This is
/// the allocation-bomb guard — a 16-byte stream must not be able to demand
/// a 4 GiB `Vec`.
#[inline]
pub fn claimed_span(
    count: usize,
    elem_bytes: usize,
    available: usize,
) -> Result<usize, CodecError> {
    let span = count
        .checked_mul(elem_bytes)
        .ok_or(CodecError::Corrupt("element count overflows"))?;
    if span > available {
        return Err(CodecError::UnexpectedEof);
    }
    Ok(span)
}

/// Decode a little-endian `f32` from a 4-byte chunk (the shape
/// `chunks_exact(4)` yields). Shorter chunks decode as zero instead of
/// panicking, so the conversion is total.
#[inline]
pub fn f32_from_le_chunk(c: &[u8]) -> f32 {
    match c {
        &[a, b, c, d] => f32::from_le_bytes([a, b, c, d]),
        _ => 0.0,
    }
}

/// Decode a packed little-endian `f32` array; trailing bytes that do not
/// fill a chunk are ignored.
#[inline]
pub fn f32s_from_le_bytes(bytes: &[u8]) -> Vec<f32> {
    bytes.chunks_exact(4).map(f32_from_le_chunk).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_advances_only_on_success() {
        let data = [1u8, 2, 3];
        let mut pos = 0;
        assert_eq!(take(&data, &mut pos, 2).unwrap(), &[1, 2]);
        assert_eq!(pos, 2);
        assert_eq!(take(&data, &mut pos, 2), Err(CodecError::UnexpectedEof));
        assert_eq!(pos, 2, "cursor must not move on failure");
    }

    #[test]
    fn take_rejects_overflowing_spans() {
        let data = [0u8; 4];
        let mut pos = 2;
        assert_eq!(
            take(&data, &mut pos, usize::MAX),
            Err(CodecError::UnexpectedEof)
        );
    }

    #[test]
    fn fixed_reads() {
        let data = 0xDEAD_BEEFu32.to_le_bytes();
        let mut pos = 0;
        assert_eq!(read_u32_le(&data, &mut pos).unwrap(), 0xDEAD_BEEF);
        assert_eq!(read_u32_le(&data, &mut pos), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn claimed_span_guards_allocation_bombs() {
        assert_eq!(claimed_span(4, 4, 16).unwrap(), 16);
        assert_eq!(claimed_span(5, 4, 16), Err(CodecError::UnexpectedEof));
        assert!(matches!(
            claimed_span(usize::MAX, 8, 16),
            Err(CodecError::Corrupt(_))
        ));
    }
}
