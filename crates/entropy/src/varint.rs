//! LEB128 variable-length integers, used by frame headers throughout the
//! lossless codecs and the FedSZ serialization format.

use crate::CodecError;

/// Append `value` to `out` as LEB128 (7 bits per byte, LSB first).
pub fn write_u64(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read a LEB128 integer starting at `data[*pos]`, advancing `pos`.
pub fn read_u64(data: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *data.get(*pos).ok_or(CodecError::UnexpectedEof)?;
        *pos += 1;
        if shift >= 64 {
            return Err(CodecError::Corrupt("varint too long"));
        }
        if shift == 63 && byte > 1 {
            return Err(CodecError::Corrupt("varint overflows u64"));
        }
        value |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

/// Convenience: write a `usize`.
pub fn write_usize(out: &mut Vec<u8>, value: usize) {
    write_u64(out, value as u64);
}

/// Convenience: read a `usize`, rejecting values that do not fit.
pub fn read_usize(data: &[u8], pos: &mut usize) -> Result<usize, CodecError> {
    let v = read_u64(data, pos)?;
    usize::try_from(v).map_err(|_| CodecError::Corrupt("varint exceeds usize"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_edge_values() {
        for &v in &[0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_u64(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn small_values_are_one_byte() {
        for v in 0u64..128 {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            assert_eq!(buf.len(), 1);
        }
    }

    #[test]
    fn sequential_values_share_a_buffer() {
        let mut buf = Vec::new();
        for v in 0u64..1000 {
            write_u64(&mut buf, v * v);
        }
        let mut pos = 0;
        for v in 0u64..1000 {
            assert_eq!(read_u64(&buf, &mut pos).unwrap(), v * v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn truncated_input_errors() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX);
        buf.pop();
        let mut pos = 0;
        assert_eq!(read_u64(&buf, &mut pos), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn overlong_encoding_rejected() {
        // Eleven continuation bytes cannot encode a u64.
        let buf = vec![0x80u8; 10];
        let mut pos = 0;
        assert!(read_u64(&buf, &mut pos).is_err());
    }
}
