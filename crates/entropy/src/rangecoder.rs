//! Adaptive binary range coder (LZMA-style), the entropy backbone of the
//! `xz`-analogue codec.
//!
//! Probabilities are 11-bit fixed point, adapted with shift-5 updates; the
//! encoder carries a 33-bit `low` with carry propagation through a cache
//! byte, exactly like the classic LZMA rc.

use crate::CodecError;

const PROB_BITS: u32 = 11;
const PROB_ONE: u16 = 1 << PROB_BITS;
const ADAPT_SHIFT: u32 = 5;
const TOP: u32 = 1 << 24;

/// Adaptive probability of a bit being 0.
#[derive(Debug, Clone, Copy)]
pub struct BitModel(u16);

impl Default for BitModel {
    fn default() -> Self {
        BitModel(PROB_ONE / 2)
    }
}

impl BitModel {
    /// Fresh model at probability 1/2.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn update(&mut self, bit: u8) {
        if bit == 0 {
            self.0 += (PROB_ONE - self.0) >> ADAPT_SHIFT;
        } else {
            self.0 -= self.0 >> ADAPT_SHIFT;
        }
    }
}

/// Range encoder writing to an internal buffer.
#[derive(Debug)]
pub struct RangeEncoder {
    low: u64,
    range: u32,
    cache: u8,
    cache_size: u64,
    out: Vec<u8>,
}

impl Default for RangeEncoder {
    fn default() -> Self {
        Self::new()
    }
}

impl RangeEncoder {
    /// Fresh encoder.
    pub fn new() -> Self {
        Self {
            low: 0,
            range: u32::MAX,
            cache: 0,
            cache_size: 1,
            out: Vec::new(),
        }
    }

    #[inline]
    fn shift_low(&mut self) {
        if self.low < 0xFF00_0000 || self.low > u32::MAX as u64 {
            let carry = (self.low >> 32) as u8;
            let mut first = true;
            while self.cache_size > 0 {
                let byte = if first {
                    self.cache.wrapping_add(carry)
                } else {
                    0xFFu8.wrapping_add(carry)
                };
                self.out.push(byte);
                first = false;
                self.cache_size -= 1;
            }
            self.cache = (self.low >> 24) as u8;
        }
        self.cache_size += 1;
        self.low = (self.low << 8) & 0xFFFF_FFFF;
    }

    /// Encode one bit under an adaptive model.
    #[inline]
    pub fn encode_bit(&mut self, model: &mut BitModel, bit: u8) {
        let bound = (self.range >> PROB_BITS) * model.0 as u32;
        if bit == 0 {
            self.range = bound;
        } else {
            self.low += bound as u64;
            self.range -= bound;
        }
        model.update(bit);
        while self.range < TOP {
            self.range <<= 8;
            self.shift_low();
        }
    }

    /// Encode `n` raw bits (MSB first) without modeling, at ~1 bit/bit cost.
    pub fn encode_direct(&mut self, value: u32, n: u32) {
        for i in (0..n).rev() {
            let bit = (value >> i) & 1;
            self.range >>= 1;
            if bit == 1 {
                self.low += self.range as u64;
            }
            while self.range < TOP {
                self.range <<= 8;
                self.shift_low();
            }
        }
    }

    /// Flush and return the compressed bytes.
    pub fn finish(mut self) -> Vec<u8> {
        for _ in 0..5 {
            self.shift_low();
        }
        self.out
    }
}

/// Range decoder reading from a slice.
#[derive(Debug)]
pub struct RangeDecoder<'a> {
    code: u32,
    range: u32,
    data: &'a [u8],
    pos: usize,
}

impl<'a> RangeDecoder<'a> {
    /// Initialize from an encoder-produced buffer.
    pub fn new(data: &'a [u8]) -> Result<Self, CodecError> {
        if data.is_empty() {
            return Err(CodecError::UnexpectedEof);
        }
        let mut d = Self {
            code: 0,
            range: u32::MAX,
            data,
            pos: 1, // first byte is the encoder's initial zero cache
        };
        for _ in 0..4 {
            d.code = (d.code << 8) | d.next_byte() as u32;
        }
        Ok(d)
    }

    #[inline]
    fn next_byte(&mut self) -> u8 {
        // Reading past the end yields zeros; the encoder's 5-byte flush
        // guarantees all modeled bits resolve before that matters.
        let b = self.data.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        b
    }

    /// Decode one bit under an adaptive model.
    #[inline]
    pub fn decode_bit(&mut self, model: &mut BitModel) -> u8 {
        let bound = (self.range >> PROB_BITS) * model.0 as u32;
        let bit = if self.code < bound {
            self.range = bound;
            0
        } else {
            self.code -= bound;
            self.range -= bound;
            1
        };
        model.update(bit);
        while self.range < TOP {
            self.range <<= 8;
            self.code = (self.code << 8) | self.next_byte() as u32;
        }
        bit
    }

    /// Has the decoder read meaningfully past the end of its input?
    ///
    /// Reads past the end synthesize zero bytes so a well-formed stream can
    /// resolve its last few modeled bits, but a decoder still asking for
    /// input long after the bytes ran out is decoding garbage. Callers with
    /// a length-driven loop (a hostile header can claim any output size)
    /// must poll this to turn an unbounded decode into an error. The slack
    /// covers the encoder's flush plus one renormalization.
    pub fn exhausted(&self) -> bool {
        self.pos > self.data.len().saturating_add(16)
    }

    /// Decode `n` raw bits written with [`RangeEncoder::encode_direct`].
    pub fn decode_direct(&mut self, n: u32) -> u32 {
        let mut value = 0u32;
        for _ in 0..n {
            self.range >>= 1;
            let bit = if self.code >= self.range {
                self.code -= self.range;
                1
            } else {
                0
            };
            value = (value << 1) | bit;
            while self.range < TOP {
                self.range <<= 8;
                self.code = (self.code << 8) | self.next_byte() as u32;
            }
        }
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn biased_bits_round_trip_and_compress() {
        // 95% zeros: the adaptive model should land well under 1 bit/bit.
        let bits: Vec<u8> = (0..20_000u32).map(|i| u8::from(i % 20 == 0)).collect();
        let mut enc = RangeEncoder::new();
        let mut m = BitModel::new();
        for &b in &bits {
            enc.encode_bit(&mut m, b);
        }
        let data = enc.finish();
        assert!(
            data.len() < bits.len() / 8 / 2,
            "biased stream should compress >2x, got {} bytes",
            data.len()
        );
        let mut dec = RangeDecoder::new(&data).unwrap();
        let mut m = BitModel::new();
        for &b in &bits {
            assert_eq!(dec.decode_bit(&mut m), b);
        }
    }

    #[test]
    fn direct_bits_round_trip() {
        let values: Vec<(u32, u32)> = (0..2000u32)
            .map(|i| {
                let n = i % 24 + 1;
                (i.wrapping_mul(2654435761) & ((1 << n) - 1), n)
            })
            .collect();
        let mut enc = RangeEncoder::new();
        for &(v, n) in &values {
            enc.encode_direct(v, n);
        }
        let data = enc.finish();
        let mut dec = RangeDecoder::new(&data).unwrap();
        for &(v, n) in &values {
            assert_eq!(dec.decode_direct(n), v);
        }
    }

    #[test]
    fn mixed_modeled_and_direct() {
        let mut enc = RangeEncoder::new();
        let mut m0 = BitModel::new();
        let mut m1 = BitModel::new();
        for i in 0..5000u32 {
            enc.encode_bit(&mut m0, (i % 3 == 0) as u8);
            enc.encode_direct(i & 0xF, 4);
            enc.encode_bit(&mut m1, (i % 7 == 0) as u8);
        }
        let data = enc.finish();
        let mut dec = RangeDecoder::new(&data).unwrap();
        let mut m0 = BitModel::new();
        let mut m1 = BitModel::new();
        for i in 0..5000u32 {
            assert_eq!(dec.decode_bit(&mut m0), (i % 3 == 0) as u8);
            assert_eq!(dec.decode_direct(4), i & 0xF);
            assert_eq!(dec.decode_bit(&mut m1), (i % 7 == 0) as u8);
        }
    }

    #[test]
    fn empty_input_is_rejected() {
        assert!(RangeDecoder::new(&[]).is_err());
    }

    #[test]
    fn random_bits_cost_about_one_bit_each() {
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut bits = Vec::new();
        for _ in 0..16_000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            bits.push((state & 1) as u8);
        }
        let mut enc = RangeEncoder::new();
        let mut m = BitModel::new();
        for &b in &bits {
            enc.encode_bit(&mut m, b);
        }
        let data = enc.finish();
        let ideal = bits.len() / 8;
        assert!(
            data.len() <= ideal + ideal / 10 + 16,
            "incompressible stream blew up: {} vs ideal {}",
            data.len(),
            ideal
        );
    }
}
