//! IEEE CRC-32 (the polynomial used by gzip/zlib), table-driven.

/// Reflected polynomial for IEEE CRC-32.
const POLY: u32 = 0xEDB8_8320;

/// Lazily built lookup table (256 entries).
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { (c >> 1) ^ POLY } else { c >> 1 };
            }
            *e = c;
        }
        t
    })
}

/// Streaming CRC-32 state.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh CRC state.
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Feed bytes.
    pub fn update(&mut self, data: &[u8]) {
        let t = table();
        for &b in data {
            self.state = (self.state >> 8) ^ t[((self.state ^ b as u32) & 0xFF) as usize];
        }
    }

    /// Final checksum.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of a buffer.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let mut c = Crc32::new();
        for chunk in data.chunks(7) {
            c.update(chunk);
        }
        assert_eq!(c.finish(), crc32(&data));
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = vec![0u8; 64];
        let base = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                data[i] ^= 1 << bit;
                assert_ne!(crc32(&data), base, "flip at byte {i} bit {bit} undetected");
                data[i] ^= 1 << bit;
            }
        }
    }
}
