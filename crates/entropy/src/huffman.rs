//! Canonical Huffman coding over a dense `u32` alphabet.
//!
//! Used by the SZ2/SZ3 quantization-code stage and by the deflate-style
//! lossless codecs. The code-length table is serialized with run-length
//! encoding so that sparse alphabets (e.g. 2^16 quantization bins of which a
//! few hundred occur) cost little header space.

use crate::bitio::{BitReader, BitWriter};
use crate::CodecError;

/// Maximum admitted code length. Streams are decodable with a plain u64
/// accumulator and headers stay small; frequencies are flattened until the
/// implicit tree fits.
const MAX_LEN: u8 = 32;

/// Compute Huffman code lengths for `freqs` (zero-frequency symbols get
/// length 0), flattening frequencies until no code exceeds `MAX_LEN`.
fn code_lengths(freqs: &[u64]) -> Vec<u8> {
    let mut f: Vec<u64> = freqs.to_vec();
    loop {
        let lens = code_lengths_once(&f);
        if lens.iter().all(|&l| l <= MAX_LEN) {
            return lens;
        }
        for x in &mut f {
            if *x > 0 {
                *x = x.div_ceil(2);
            }
        }
    }
}

fn code_lengths_once(freqs: &[u64]) -> Vec<u8> {
    // Nodes: leaves first, then internal nodes appended.
    #[derive(Clone, Copy)]
    struct Node {
        parent: u32,
    }
    let mut nodes: Vec<Node> = Vec::with_capacity(freqs.len() * 2);
    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, u32)>> =
        std::collections::BinaryHeap::new();
    for (i, &f) in freqs.iter().enumerate() {
        nodes.push(Node { parent: u32::MAX });
        if f > 0 {
            heap.push(std::cmp::Reverse((f, i as u32)));
        }
    }
    let live = heap.len();
    let mut lens = vec![0u8; freqs.len()];
    if live == 0 {
        return lens;
    }
    if live == 1 {
        // A single distinct symbol still needs one bit on the wire.
        let idx = heap.pop().unwrap().0 .1;
        lens[idx as usize] = 1;
        return lens;
    }
    while heap.len() > 1 {
        let std::cmp::Reverse((fa, a)) = heap.pop().unwrap();
        let std::cmp::Reverse((fb, b)) = heap.pop().unwrap();
        let id = nodes.len() as u32;
        nodes.push(Node { parent: u32::MAX });
        nodes[a as usize].parent = id;
        nodes[b as usize].parent = id;
        heap.push(std::cmp::Reverse((fa + fb, id)));
    }
    for (i, len) in lens.iter_mut().enumerate() {
        if freqs[i] == 0 {
            continue;
        }
        let mut depth = 0u32;
        let mut n = i as u32;
        while nodes[n as usize].parent != u32::MAX {
            n = nodes[n as usize].parent;
            depth += 1;
        }
        *len = depth.min(255) as u8;
    }
    lens
}

/// Assign canonical codes given lengths. Returns `(code, len)` per symbol.
fn canonical_codes(lens: &[u8]) -> Vec<(u32, u8)> {
    let mut order: Vec<u32> = (0..lens.len() as u32)
        .filter(|&s| lens[s as usize] > 0)
        .collect();
    order.sort_unstable_by_key(|&s| (lens[s as usize], s));
    let mut codes = vec![(0u32, 0u8); lens.len()];
    let mut code: u32 = 0;
    let mut prev_len = 0u8;
    for &s in &order {
        let len = lens[s as usize];
        code <<= len - prev_len;
        codes[s as usize] = (code, len);
        code += 1;
        prev_len = len;
    }
    codes
}

/// Encoder side of a canonical Huffman code.
#[derive(Debug, Clone)]
pub struct HuffmanEncoder {
    codes: Vec<(u32, u8)>,
}

impl HuffmanEncoder {
    /// Build a code from symbol frequencies (index = symbol).
    pub fn from_frequencies(freqs: &[u64]) -> Self {
        let lens = code_lengths(freqs);
        Self {
            codes: canonical_codes(&lens),
        }
    }

    /// Serialize the code-length table (RLE of equal lengths).
    pub fn write_table(&self, w: &mut BitWriter) {
        w.write_u32(self.codes.len() as u32);
        let mut i = 0usize;
        while i < self.codes.len() {
            let len = self.codes[i].1;
            let mut run = 1usize;
            while i + run < self.codes.len() && self.codes[i + run].1 == len {
                run += 1;
            }
            let mut remaining = run;
            while remaining > 0 {
                let chunk = remaining.min(u16::MAX as usize);
                w.write_bits(len as u64, 6);
                w.write_bits(chunk as u64, 16);
                remaining -= chunk;
            }
            i += run;
        }
    }

    /// Emit one symbol.
    ///
    /// # Panics
    /// Panics (debug) if the symbol had zero frequency at build time.
    #[inline]
    pub fn encode(&self, w: &mut BitWriter, sym: u32) {
        let (code, len) = self.codes[sym as usize];
        debug_assert!(
            len > 0,
            "encoding symbol {sym} absent from the frequency table"
        );
        w.write_bits(code as u64, len as u32);
    }

    /// Code length in bits for a symbol (0 if absent).
    pub fn len_of(&self, sym: u32) -> u8 {
        self.codes[sym as usize].1
    }

    /// Exact size in bits of encoding `freqs[sym]` occurrences of each symbol
    /// (excluding the table header). Useful for cost estimation.
    pub fn payload_bits(&self, freqs: &[u64]) -> u64 {
        freqs
            .iter()
            .enumerate()
            .map(|(s, &f)| f * self.codes[s].1 as u64)
            .sum()
    }
}

/// Bits resolved by the primary decode lookup table.
const LOOKUP_BITS: u32 = 12;

/// Decoder side of a canonical Huffman code.
///
/// Decoding is table-accelerated: codes up to [`LOOKUP_BITS`] long resolve
/// with one peek + table hit; longer codes fall back to a canonical
/// length-first walk.
#[derive(Debug, Clone)]
pub struct HuffmanDecoder {
    /// Primary table: `(symbol, code_len)` per LOOKUP_BITS-bit prefix;
    /// `code_len == 0` marks a long code needing the slow path.
    lookup: Vec<(u32, u8)>,
    /// Symbols sorted by (len, symbol).
    syms: Vec<u32>,
    /// For each length 1..=MAX_LEN: canonical code of the first symbol.
    first_code: [u32; MAX_LEN as usize + 1],
    /// For each length: index into `syms` of the first symbol.
    offset: [u32; MAX_LEN as usize + 1],
    /// For each length: number of symbols.
    count: [u32; MAX_LEN as usize + 1],
    max_len: u8,
}

impl HuffmanDecoder {
    /// Rebuild the decoder from a serialized table.
    pub fn read_table(r: &mut BitReader<'_>) -> Result<Self, CodecError> {
        let n = r.read_u32()? as usize;
        if n > (1 << 26) {
            return Err(CodecError::Corrupt("huffman alphabet too large"));
        }
        let mut lens = vec![0u8; n];
        let mut filled = 0usize;
        while filled < n {
            let len = r.read_bits(6)? as u8;
            let run = r.read_bits(16)? as usize;
            if run == 0 || filled + run > n {
                return Err(CodecError::Corrupt("bad huffman RLE run"));
            }
            for l in &mut lens[filled..filled + run] {
                *l = len;
            }
            filled += run;
        }
        Self::from_lengths(&lens)
    }

    /// Build directly from code lengths.
    pub fn from_lengths(lens: &[u8]) -> Result<Self, CodecError> {
        let mut syms: Vec<u32> = (0..lens.len() as u32)
            .filter(|&s| lens[s as usize] > 0)
            .collect();
        syms.sort_unstable_by_key(|&s| (lens[s as usize], s));
        let mut first_code = [0u32; MAX_LEN as usize + 1];
        let mut offset = [0u32; MAX_LEN as usize + 1];
        let mut count = [0u32; MAX_LEN as usize + 1];
        let mut max_len = 0u8;
        for &s in &syms {
            let l = lens[s as usize];
            if l > MAX_LEN {
                return Err(CodecError::Corrupt("huffman length exceeds limit"));
            }
            count[l as usize] += 1;
            max_len = max_len.max(l);
        }
        let mut code = 0u32;
        let mut idx = 0u32;
        for l in 1..=max_len {
            code <<= 1;
            first_code[l as usize] = code;
            offset[l as usize] = idx;
            code = code
                .checked_add(count[l as usize])
                .ok_or(CodecError::Corrupt("huffman code overflow"))?;
            // Kraft check: the codes of this length must fit in l bits, or
            // the table is not a valid canonical code (corrupt stream).
            if u64::from(code) > 1u64 << l {
                return Err(CodecError::Corrupt("huffman lengths violate Kraft"));
            }
            idx += count[l as usize];
        }
        // Primary lookup table for short codes.
        let mut lookup = vec![(0u32, 0u8); 1 << LOOKUP_BITS];
        {
            let mut code = 0u32;
            let mut idx = 0usize;
            for l in 1..=max_len.min(LOOKUP_BITS as u8) {
                code <<= 1;
                for k in 0..count[l as usize] {
                    let sym = syms[idx + k as usize];
                    let prefix = ((code + k) as usize) << (LOOKUP_BITS - l as u32);
                    for slot in &mut lookup[prefix..prefix + (1usize << (LOOKUP_BITS - l as u32))] {
                        *slot = (sym, l);
                    }
                }
                code += count[l as usize];
                idx += count[l as usize] as usize;
            }
        }
        Ok(Self {
            lookup,
            syms,
            first_code,
            offset,
            count,
            max_len,
        })
    }

    /// Decode one symbol.
    #[inline]
    pub fn decode(&self, r: &mut BitReader<'_>) -> Result<u32, CodecError> {
        let prefix = r.peek_bits(LOOKUP_BITS) as usize;
        let (sym, len) = self.lookup[prefix];
        if len != 0 {
            r.consume(len as u32)?;
            return Ok(sym);
        }
        self.decode_slow(r)
    }

    /// Length-first canonical walk for codes longer than the lookup table.
    #[cold]
    fn decode_slow(&self, r: &mut BitReader<'_>) -> Result<u32, CodecError> {
        let mut code = 0u32;
        for l in 1..=self.max_len {
            code = (code << 1) | r.read_bits(1)? as u32;
            let li = l as usize;
            if self.count[li] > 0 {
                let rel = code.wrapping_sub(self.first_code[li]);
                if rel < self.count[li] {
                    return Ok(self.syms[(self.offset[li] + rel) as usize]);
                }
            }
        }
        Err(CodecError::Corrupt("invalid huffman code"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(symbols: &[u32], alphabet: usize) {
        let mut freqs = vec![0u64; alphabet];
        for &s in symbols {
            freqs[s as usize] += 1;
        }
        let enc = HuffmanEncoder::from_frequencies(&freqs);
        let mut w = BitWriter::new();
        enc.write_table(&mut w);
        for &s in symbols {
            enc.encode(&mut w, s);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        let dec = HuffmanDecoder::read_table(&mut r).unwrap();
        for &s in symbols {
            assert_eq!(dec.decode(&mut r).unwrap(), s);
        }
    }

    #[test]
    fn skewed_alphabet_round_trip() {
        let mut syms = Vec::new();
        for i in 0..2000u32 {
            // Heavily skewed toward small symbols, like quantization codes.
            let s = (i * i) % 37;
            syms.push(s);
        }
        round_trip(&syms, 64);
    }

    #[test]
    fn single_symbol_alphabet() {
        round_trip(&[5u32; 100], 16);
    }

    #[test]
    fn two_symbols() {
        let syms: Vec<u32> = (0..64).map(|i| i % 2).collect();
        round_trip(&syms, 2);
    }

    #[test]
    fn large_sparse_alphabet() {
        let syms: Vec<u32> = (0..3000).map(|i| (i * 7919) % 65536).collect();
        round_trip(&syms, 65536);
    }

    #[test]
    fn skewed_code_is_shorter_for_frequent_symbols() {
        let mut freqs = vec![0u64; 4];
        freqs[0] = 1000;
        freqs[1] = 10;
        freqs[2] = 10;
        freqs[3] = 10;
        let enc = HuffmanEncoder::from_frequencies(&freqs);
        assert!(enc.len_of(0) < enc.len_of(1));
    }

    #[test]
    fn payload_bits_matches_actual_encoding() {
        let syms: Vec<u32> = (0..500).map(|i| i % 7).collect();
        let mut freqs = vec![0u64; 8];
        for &s in &syms {
            freqs[s as usize] += 1;
        }
        let enc = HuffmanEncoder::from_frequencies(&freqs);
        let mut w = BitWriter::new();
        for &s in &syms {
            enc.encode(&mut w, s);
        }
        let actual_bits = syms.iter().map(|&s| enc.len_of(s) as u64).sum::<u64>();
        assert_eq!(enc.payload_bits(&freqs), actual_bits);
        assert_eq!(w.finish().len(), actual_bits.div_ceil(8) as usize);
    }

    #[test]
    fn empty_table_round_trips() {
        let enc = HuffmanEncoder::from_frequencies(&[0u64; 10]);
        let mut w = BitWriter::new();
        enc.write_table(&mut w);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        let dec = HuffmanDecoder::read_table(&mut r).unwrap();
        assert_eq!(dec.max_len, 0);
    }

    #[test]
    fn corrupt_table_is_rejected() {
        // Claim a huge alphabet with no data behind it.
        let mut w = BitWriter::new();
        w.write_u32(1 << 27);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert!(HuffmanDecoder::read_table(&mut r).is_err());
    }

    #[test]
    fn kraft_inequality_holds() {
        let mut freqs = vec![0u64; 300];
        for (i, f) in freqs.iter_mut().enumerate() {
            *f = (i as u64 % 17) + 1;
        }
        let enc = HuffmanEncoder::from_frequencies(&freqs);
        let kraft: f64 = (0..300u32)
            .map(|s| {
                let l = enc.len_of(s);
                if l == 0 {
                    0.0
                } else {
                    2f64.powi(-(l as i32))
                }
            })
            .sum();
        assert!(kraft <= 1.0 + 1e-12, "kraft {kraft}");
    }
}
