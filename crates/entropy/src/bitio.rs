//! MSB-first bit-level I/O over byte buffers.

use crate::CodecError;

/// Accumulates bits most-significant-first into a byte vector.
#[derive(Debug, Default)]
pub struct BitWriter {
    out: Vec<u8>,
    acc: u64,
    nbits: u32,
}

impl BitWriter {
    /// Empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writer with reserved output capacity in bytes.
    pub fn with_capacity(bytes: usize) -> Self {
        Self {
            out: Vec::with_capacity(bytes),
            acc: 0,
            nbits: 0,
        }
    }

    /// Append the low `n` bits of `value`, MSB first.
    ///
    /// # Panics
    /// Panics if `n > 57` (keeps the accumulator flush-free in one branch)
    /// or if `value` has bits above `n`.
    #[inline]
    pub fn write_bits(&mut self, value: u64, n: u32) {
        debug_assert!(n <= 57, "write_bits supports at most 57 bits per call");
        debug_assert!(
            n == 64 || value >> n == 0,
            "value {value:#x} wider than {n} bits"
        );
        self.acc = (self.acc << n) | value;
        self.nbits += n;
        while self.nbits >= 8 {
            self.nbits -= 8;
            self.out.push((self.acc >> self.nbits) as u8);
        }
    }

    /// Append a single bit.
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        self.write_bits(bit as u64, 1);
    }

    /// Append a full 32-bit word (two calls under the 57-bit limit).
    #[inline]
    pub fn write_u32(&mut self, value: u32) {
        self.write_bits(value as u64, 32);
    }

    /// Number of complete bytes plus any pending partial byte.
    pub fn byte_len(&self) -> usize {
        self.out.len() + usize::from(self.nbits > 0)
    }

    /// Pad the final partial byte with zeros and return the buffer.
    pub fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            let pad = 8 - self.nbits;
            self.acc <<= pad;
            self.out.push(self.acc as u8);
            self.nbits = 0;
        }
        self.out
    }
}

/// Reads bits most-significant-first from a byte slice.
#[derive(Debug)]
pub struct BitReader<'a> {
    data: &'a [u8],
    /// Next byte index to load.
    pos: usize,
    acc: u64,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    /// Start reading at the beginning of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Self {
            data,
            pos: 0,
            acc: 0,
            nbits: 0,
        }
    }

    #[inline]
    fn refill(&mut self, need: u32) -> Result<(), CodecError> {
        while self.nbits < need {
            let byte = *self.data.get(self.pos).ok_or(CodecError::UnexpectedEof)?;
            self.pos += 1;
            self.acc = (self.acc << 8) | byte as u64;
            self.nbits += 8;
        }
        Ok(())
    }

    /// Read `n` bits (`n <= 57`), MSB first.
    #[inline]
    pub fn read_bits(&mut self, n: u32) -> Result<u64, CodecError> {
        if n > 57 {
            return Err(CodecError::Corrupt("bit read wider than accumulator"));
        }
        if n == 0 {
            return Ok(0);
        }
        self.refill(n)?;
        self.nbits -= n;
        let v = (self.acc >> self.nbits) & ((1u64 << n) - 1);
        Ok(v)
    }

    /// Read a single bit.
    #[inline]
    pub fn read_bit(&mut self) -> Result<bool, CodecError> {
        Ok(self.read_bits(1)? == 1)
    }

    /// Read a full 32-bit word.
    #[inline]
    pub fn read_u32(&mut self) -> Result<u32, CodecError> {
        Ok(self.read_bits(32)? as u32)
    }

    /// Peek the next `n` bits without consuming them, zero-padding past the
    /// end of the input. Used by table-accelerated Huffman decoding.
    #[inline]
    pub fn peek_bits(&mut self, n: u32) -> u64 {
        debug_assert!((1..=56).contains(&n));
        while self.nbits < n && self.pos < self.data.len() {
            self.acc = (self.acc << 8) | self.data[self.pos] as u64;
            self.pos += 1;
            self.nbits += 8;
        }
        let mask = (1u64 << n) - 1;
        if self.nbits >= n {
            (self.acc >> (self.nbits - n)) & mask
        } else {
            (self.acc << (n - self.nbits)) & mask
        }
    }

    /// Consume `n` bits previously peeked.
    #[inline]
    pub fn consume(&mut self, n: u32) -> Result<(), CodecError> {
        self.refill(n)?;
        self.nbits -= n;
        Ok(())
    }

    /// Bits consumed so far, counting whole bytes pulled from the input.
    pub fn bits_consumed(&self) -> usize {
        self.pos * 8 - self.nbits as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_mixed_widths() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0xFFFF, 16);
        w.write_bit(false);
        w.write_bits(42, 13);
        w.write_u32(0xDEAD_BEEF);
        let bytes = w.finish();

        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(16).unwrap(), 0xFFFF);
        assert!(!r.read_bit().unwrap());
        assert_eq!(r.read_bits(13).unwrap(), 42);
        assert_eq!(r.read_u32().unwrap(), 0xDEAD_BEEF);
    }

    #[test]
    fn finish_pads_with_zeros() {
        let mut w = BitWriter::new();
        w.write_bits(0b1, 1);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0b1000_0000]);
    }

    #[test]
    fn eof_is_reported() {
        let mut r = BitReader::new(&[0xAB]);
        assert_eq!(r.read_bits(8).unwrap(), 0xAB);
        assert_eq!(r.read_bits(1), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn byte_len_tracks_partial_bytes() {
        let mut w = BitWriter::new();
        assert_eq!(w.byte_len(), 0);
        w.write_bits(1, 1);
        assert_eq!(w.byte_len(), 1);
        w.write_bits(0x7F, 7);
        assert_eq!(w.byte_len(), 1);
        w.write_bits(1, 1);
        assert_eq!(w.byte_len(), 2);
    }

    #[test]
    fn bits_consumed_counts_reads() {
        let mut w = BitWriter::new();
        w.write_bits(0x3FF, 10);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        r.read_bits(10).unwrap();
        assert_eq!(r.bits_consumed(), 10);
    }

    #[test]
    fn many_random_values_round_trip() {
        // Deterministic pseudo-random widths/values without external crates.
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut items = Vec::new();
        let mut w = BitWriter::new();
        for _ in 0..10_000 {
            let n = (next() % 57 + 1) as u32;
            let v = next() & ((1u64 << n) - 1);
            items.push((v, n));
            w.write_bits(v, n);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for (v, n) in items {
            assert_eq!(r.read_bits(n).unwrap(), v);
        }
    }
}
