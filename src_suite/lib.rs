//! Umbrella crate: re-exports the FedSZ workspace for examples and tests.
pub use fedsz;
pub use fedsz_dnn as dnn;
pub use fedsz_eblc as eblc;
pub use fedsz_fl as fl;
pub use fedsz_lossless as lossless;
pub use fedsz_models as models;
pub use fedsz_netsim as netsim;
pub use fedsz_tensor as tensor;
