#!/usr/bin/env bash
# Regenerate every table and figure of the paper into results/.
#
# Usage: scripts/run_experiments.sh [--quick]
#   --quick trims the FL-training experiments (fewer rounds / samples) so
#   the full sweep finishes in minutes instead of hours on one core.
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results

QUICK=${1:-}
if [ "$QUICK" = "--quick" ]; then
  T1_FLAGS="--rounds 6"
  F4_FLAGS="--rounds 8"
  F5_FLAGS="--rounds 12 --samples 112"
  F6_FLAGS="--rounds 2"
else
  T1_FLAGS="--rounds 10"
  F4_FLAGS="--rounds 10"
  F5_FLAGS="--rounds 20 --samples 144"
  F6_FLAGS="--rounds 3"
fi

run() {
  local name=$1; shift
  echo "=== $name $* ==="
  # shellcheck disable=SC2086
  cargo run -q -p fedsz-bench --release --bin "$name" -- "$@" > "results/$name.txt"
  echo "    -> results/$name.txt"
}

cargo build -q --release -p fedsz-bench

run table3
run table4
run fig2
run fig3
run table2
run fig10
run table5
run fig7
run fig8
run fig9
run ablate_threshold
run ablate_backend
run ablate_composition
run ablate_partition
run fig6 $F6_FLAGS
run fig4 $F4_FLAGS
run table1 $T1_FLAGS
run ablate_schedule
run fig5 $F5_FLAGS

echo "all regenerators complete; outputs in results/"
